package fluid

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestSingleJobFullRate(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 2)
	var done time.Duration
	env.Go("job", func(p *sim.Proc) {
		srv.Run(p, 6, 0) // 6 work units at rate 2
		done = p.Now()
	})
	env.Run()
	if done != 3*time.Second {
		t.Errorf("finished at %v, want 3s", done)
	}
}

func TestEqualSharing(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 1)
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Go("job", func(p *sim.Proc) {
			srv.Run(p, 1, 0)
			done[i] = p.Now()
		})
	}
	env.Run()
	for i, d := range done {
		if d != 2*time.Second {
			t.Errorf("job %d finished at %v, want 2s (processor sharing)", i, d)
		}
	}
}

func TestLateArrivalSharing(t *testing.T) {
	// Classic PS: A (work 2) starts at 0, B (work 1) at t=1. From t=1 they
	// each run at 1/2, so both finish at t=3.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 1)
	var aDone, bDone time.Duration
	env.Go("a", func(p *sim.Proc) {
		srv.Run(p, 2, 0)
		aDone = p.Now()
	})
	env.Go("b", func(p *sim.Proc) {
		p.Sleep(time.Second)
		srv.Run(p, 1, 0)
		bDone = p.Now()
	})
	env.Run()
	if aDone != 3*time.Second {
		t.Errorf("a finished at %v, want 3s", aDone)
	}
	if bDone != 3*time.Second {
		t.Errorf("b finished at %v, want 3s", bDone)
	}
}

func TestCapIsolation(t *testing.T) {
	// Two capped jobs on a big server do not interfere: this is the cgroup
	// isolation property the paper trades performance against.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Go("job", func(p *sim.Proc) {
			srv.Run(p, 2, 1) // capped at one core
			done[i] = p.Now()
		})
	}
	env.Run()
	for i, d := range done {
		if d != 2*time.Second {
			t.Errorf("capped job %d finished at %v, want 2s", i, d)
		}
	}
}

func TestWaterFillingRedistribution(t *testing.T) {
	// Capacity 3: one job capped at 0.5, two uncapped. The uncapped pair
	// split the leftover 2.5 → 1.25 each. Work sizes chosen so all three
	// stay active long enough to observe the rates via finish times.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 3)
	var cappedDone, unc1Done time.Duration
	env.Go("capped", func(p *sim.Proc) {
		srv.Run(p, 1, 0.5)
		cappedDone = p.Now()
	})
	env.Go("unc1", func(p *sim.Proc) {
		srv.Run(p, 2.5, 0)
		unc1Done = p.Now()
	})
	env.Go("unc2", func(p *sim.Proc) {
		srv.Run(p, 2.5, 0)
	})
	env.Run()
	if cappedDone != 2*time.Second {
		t.Errorf("capped finished at %v, want 2s (rate 0.5)", cappedDone)
	}
	// Uncapped: rate 1.25 while all three active (until t=2), then 1.5.
	// Remaining at t=2: 2.5-2.5=0 — they finish exactly at 2s too.
	if unc1Done != 2*time.Second {
		t.Errorf("uncapped finished at %v, want 2s (rate 1.25)", unc1Done)
	}
}

func TestContentionSlowdownVsIsolation(t *testing.T) {
	// 8 native (uncapped) jobs of 2 core-seconds on 4 cores: each gets 0.5
	// cores → 4s. The same jobs capped at 1 core less than fair share would
	// behave identically here, but 2 jobs on the same node finish in 1s
	// each when capped at 1 on an 8-core node regardless of a third noisy
	// neighbour.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 4)
	var last time.Duration
	for i := 0; i < 8; i++ {
		env.Go("native", func(p *sim.Proc) {
			srv.Run(p, 2, 0)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	env.Run()
	if last != 4*time.Second {
		t.Errorf("8 uncapped 2-core-second jobs on 4 cores finished at %v, want 4s", last)
	}
}

func TestReservationShieldsFromNoisyNeighbours(t *testing.T) {
	// 16 uncapped hogs + one reserved 1-core job on an 8-core server: the
	// reserved job runs at its floor regardless of the storm.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	for i := 0; i < 16; i++ {
		env.Go("hog", func(p *sim.Proc) { srv.Run(p, 1e5, 0) })
	}
	var done time.Duration
	env.Go("reserved", func(p *sim.Proc) {
		srv.RunReserved(p, 2, 1, 1)
		done = p.Now()
	})
	env.RunUntil(time.Hour)
	if done != 2*time.Second {
		t.Errorf("reserved job finished at %v, want 2s (floor honoured)", done)
	}
}

func TestUnreservedJobSuffersUnderSameStorm(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	for i := 0; i < 16; i++ {
		env.Go("hog", func(p *sim.Proc) { srv.Run(p, 1e5, 0) })
	}
	var done time.Duration
	env.Go("victim", func(p *sim.Proc) {
		srv.Run(p, 2, 1) // capped but NOT reserved
		done = p.Now()
	})
	env.RunUntil(time.Hour)
	// Fair share ≈ 8/17 ≈ 0.47 cores → ≈ 4.25s.
	if done < 4*time.Second {
		t.Errorf("unreserved job finished at %v; expected noisy-neighbour slowdown", done)
	}
}

func TestOverReservedFloorsScaleProportionally(t *testing.T) {
	// 4 jobs each reserving 4 cores on an 8-core server: floors scale to 2.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	var done [4]time.Duration
	for i := 0; i < 4; i++ {
		i := i
		env.Go("job", func(p *sim.Proc) {
			srv.RunReserved(p, 4, 4, 4)
			done[i] = p.Now()
		})
	}
	env.Run()
	for i, d := range done {
		if d != 2*time.Second {
			t.Errorf("job %d finished at %v, want 2s (floor scaled 4→2)", i, d)
		}
	}
}

func TestFloorClampedToCap(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	env.Go("job", func(p *sim.Proc) {
		srv.RunReserved(p, 2, 1, 5) // floor above cap clamps to 1
		if p.Now() != 2*time.Second {
			t.Errorf("finished at %v, want 2s", p.Now())
		}
	})
	env.Run()
}

func TestReservedPlusSpareCapacity(t *testing.T) {
	// One reserved 1-core job alone on an 8-core server still only runs at
	// its cap, and an uncapped companion soaks up the rest.
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 8)
	var reservedDone, freeDone time.Duration
	env.Go("reserved", func(p *sim.Proc) {
		srv.RunReserved(p, 2, 1, 1)
		reservedDone = p.Now()
	})
	env.Go("free", func(p *sim.Proc) {
		srv.Run(p, 14, 0) // rate 7 alongside the reserved job
		freeDone = p.Now()
	})
	env.Run()
	if reservedDone != 2*time.Second {
		t.Errorf("reserved finished at %v, want 2s", reservedDone)
	}
	if freeDone != 2*time.Second {
		t.Errorf("free finished at %v, want 2s (rate 7)", freeDone)
	}
}

func TestServedConservation(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 2)
	total := 0.0
	for i := 0; i < 5; i++ {
		w := float64(i + 1)
		total += w
		env.Go("job", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * 300 * time.Millisecond)
			srv.Run(p, w, 0)
		})
	}
	env.Run()
	if math.Abs(srv.Served()-total) > 1e-3 {
		t.Errorf("Served = %f, want %f", srv.Served(), total)
	}
	if srv.Load() != 0 {
		t.Errorf("Load = %d after drain", srv.Load())
	}
}

func TestZeroWorkReturnsImmediately(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 1)
	env.Go("job", func(p *sim.Proc) {
		srv.Run(p, 0, 0)
		if p.Now() != 0 {
			t.Errorf("zero work took %v", p.Now())
		}
	})
	env.Run()
}

// Property: with random job sets, every job's completion time is at least
// work/min(cap, capacity) (can't beat its best rate) and total served work
// is conserved.
func TestPropertyCompletionBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		env := sim.NewEnv(seed)
		capTotal := 1 + rng.Float64()*7
		srv := New(env, "cpu", capTotal)
		n := 1 + rng.Intn(8)
		okAll := true
		sumWork := 0.0
		for i := 0; i < n; i++ {
			work := 0.1 + rng.Float64()*5
			var rateCap float64
			if rng.Float64() < 0.5 {
				rateCap = 0.1 + rng.Float64()*capTotal
			}
			arrive := time.Duration(rng.Float64() * float64(3*time.Second))
			sumWork += work
			env.Go("job", func(p *sim.Proc) {
				p.Sleep(arrive)
				start := p.Now()
				srv.Run(p, work, rateCap)
				elapsed := (p.Now() - start).Seconds()
				best := capTotal
				if rateCap > 0 && rateCap < best {
					best = rateCap
				}
				if elapsed < work/best-1e-6 {
					okAll = false
				}
			})
		}
		env.Run()
		if math.Abs(srv.Served()-sumWork) > 1e-3 {
			return false
		}
		return okAll && env.Alive() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the fluid server is deterministic — identical seeds yield
// identical completion schedules.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		rng := sim.NewRNG(seed)
		env := sim.NewEnv(seed)
		srv := New(env, "cpu", 4)
		n := 3 + rng.Intn(6)
		times := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			i := i
			work := 0.5 + rng.Float64()*3
			arrive := time.Duration(rng.Float64() * float64(time.Second))
			env.Go("job", func(p *sim.Proc) {
				p.Sleep(arrive)
				srv.Run(p, work, 0)
				times[i] = p.Now()
			})
		}
		env.Run()
		return times
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRateReporting(t *testing.T) {
	env := sim.NewEnv(1)
	srv := New(env, "cpu", 4)
	env.Go("watcher", func(p *sim.Proc) {
		p.Sleep(500 * time.Millisecond)
		if got := srv.Rate(); math.Abs(got-3) > 1e-9 {
			t.Errorf("Rate = %f, want 3 (two jobs: cap 1 + uncapped 2... )", got)
		}
		if srv.Load() != 2 {
			t.Errorf("Load = %d, want 2", srv.Load())
		}
	})
	env.Go("capped", func(p *sim.Proc) { srv.Run(p, 10, 1) })
	env.Go("uncapped", func(p *sim.Proc) { srv.Run(p, 10, 2) })
	env.Run()
}

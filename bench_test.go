// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment), plus ablations of the design choices DESIGN.md calls
// out. Each iteration executes the full scenario in the discrete-event
// simulator; the reported wall time is simulator throughput, and the
// experiment's own result (virtual seconds, slopes) is attached as custom
// metrics so `go test -bench` output doubles as a results table.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crt"
	"repro/internal/experiments"
	"repro/internal/fluid"
	"repro/internal/knative"
	"repro/internal/kube"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/wms"
	"repro/internal/workload"
)

func quickOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Reps = 1
	return o
}

// BenchmarkFig1ContainerReuse regenerates Fig. 1: docker-per-task vs
// knative container reuse over a sequential task sweep.
func BenchmarkFig1ContainerReuse(b *testing.B) {
	o := quickOpts()
	var res experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig1(o)
	}
	b.ReportMetric(res.DockerFit.Slope, "docker_s/task")
	b.ReportMetric(res.KnativeFit.Slope, "knative_s/task")
	b.ReportMetric(res.SpeedupPct, "reduction_%")
}

// BenchmarkFig2ParallelScaling regenerates Fig. 2: parallel-task scaling of
// native, knative, and condor-container execution.
func BenchmarkFig2ParallelScaling(b *testing.B) {
	o := quickOpts()
	var res experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig2(o)
	}
	b.ReportMetric(res.NativeFit.Slope, "native_s/task")
	b.ReportMetric(res.KnativeFit.Slope, "knative_s/task")
	b.ReportMetric(res.ContainerFit.Slope, "container_s/task")
}

// BenchmarkFig5TradeoffPoint regenerates the centre point of Fig. 5's
// ternary sweep (equal thirds of each mode).
func BenchmarkFig5TradeoffPoint(b *testing.B) {
	o := quickOpts()
	mix := experiments.Mix{Native: 1.0 / 3, Container: 1.0 / 3, Serverless: 1.0 / 3}
	var res experiments.MixResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunMix(o, mix)
	}
	b.ReportMetric(res.MakespanSecs, "virtual_s")
}

// BenchmarkFig6Scenarios regenerates each of Fig. 6's five highlighted bars.
func BenchmarkFig6Scenarios(b *testing.B) {
	for _, sc := range experiments.Fig6Mixes() {
		sc := sc
		b.Run(sc.Label, func(b *testing.B) {
			o := quickOpts()
			var res experiments.MixResult
			for i := 0; i < b.N; i++ {
				res = experiments.RunMix(o, sc.Mix)
			}
			b.ReportMetric(res.MakespanSecs, "virtual_s")
		})
	}
}

// BenchmarkColdStart regenerates the Fig. 1 cold-start annotation (1.48 s
// in the paper).
func BenchmarkColdStart(b *testing.B) {
	o := quickOpts()
	var res experiments.ColdStartResult
	for i := 0; i < b.N; i++ {
		res = experiments.ColdStart(o)
	}
	b.ReportMetric(res.ColdSecs, "cold_virtual_s")
	b.ReportMetric(res.WarmSecs, "warm_virtual_s")
}

// ---- Ablations ----

// benchChain runs one 10-task workflow in the given mode and returns its
// virtual makespan.
func benchChain(seed uint64, prm config.Params, mode wms.Mode, policy core.DeployPolicy) time.Duration {
	s := core.NewStack(seed, prm)
	s.RegisterTransformation(workload.MatmulTransformation, prm.ImageLayersBytes[len(prm.ImageLayersBytes)-1])
	var makespan time.Duration
	s.Env.Go("main", func(p *sim.Proc) {
		defer s.Shutdown()
		if mode == wms.ModeServerless {
			if err := s.DeployFunction(p, workload.MatmulTransformation, policy); err != nil {
				panic(err)
			}
		}
		wf := workload.Chain("bench", 10, prm.MatrixBytes)
		res, err := s.Engine.RunWorkflow(p, wf, wms.AssignAll(mode))
		if err != nil {
			panic(err)
		}
		makespan = res.Makespan()
	})
	s.Env.Run()
	return makespan
}

// BenchmarkAblationNegotiation compares the per-job negotiation model
// (default; overheads add to the makespan) against a strict global cycle
// (which quantizes sequential workflows and hides overheads).
func BenchmarkAblationNegotiation(b *testing.B) {
	for _, mode := range []struct {
		name   string
		perJob bool
	}{{"per-job", true}, {"global-cycle", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prm := config.Default()
			prm.PerJobNegotiation = mode.perJob
			var m time.Duration
			for i := 0; i < b.N; i++ {
				m = benchChain(1, prm, wms.ModeContainer, core.DeployPolicy{})
			}
			b.ReportMetric(m.Seconds(), "virtual_s")
		})
	}
}

// BenchmarkAblationPreStaging compares pre-staged images+containers
// (min-scale ≥ 1, pre-pull) with fully deferred provisioning
// (initial-scale 0, no pre-pull) — the §IV-2 knob. The signal lives in the
// first task's execution time: deferred provisioning pays the image pull
// and cold start there.
func BenchmarkAblationPreStaging(b *testing.B) {
	policies := []struct {
		name   string
		policy core.DeployPolicy
	}{
		{"pre-staged", core.ReusePolicy()},
		{"deferred", core.DeployPolicy{ContainerConcurrency: 1, CapCores: 1}},
	}
	for _, pc := range policies {
		pc := pc
		b.Run(pc.name, func(b *testing.B) {
			prm := config.Default()
			var firstTask float64
			for i := 0; i < b.N; i++ {
				firstTask = firstTaskExecSecs(1, prm, pc.policy)
			}
			b.ReportMetric(firstTask, "first_task_virtual_s")
		})
	}
}

// firstTaskExecSecs runs a serverless chain and returns the first task's
// on-worker execution time (start to finish, including the invocation).
func firstTaskExecSecs(seed uint64, prm config.Params, policy core.DeployPolicy) float64 {
	s := core.NewStack(seed, prm)
	s.RegisterTransformation(workload.MatmulTransformation, prm.ImageLayersBytes[len(prm.ImageLayersBytes)-1])
	var secs float64
	s.Env.Go("main", func(p *sim.Proc) {
		defer s.Shutdown()
		if err := s.DeployFunction(p, workload.MatmulTransformation, policy); err != nil {
			panic(err)
		}
		wf := workload.Chain("bench", 3, prm.MatrixBytes)
		res, err := s.Engine.RunWorkflow(p, wf, wms.AssignAll(wms.ModeServerless))
		if err != nil {
			panic(err)
		}
		first := res.Tasks[wf.TaskIDs()[0]]
		secs = (first.FinishedAt - first.StartedAt).Seconds()
	})
	s.Env.Run()
	return secs
}

// BenchmarkAblationPassByValue isolates the §IV-3 pass-by-value codec cost
// against an ideal zero-cost data plane (e.g. a shared filesystem read).
func BenchmarkAblationPassByValue(b *testing.B) {
	for _, pc := range []struct {
		name  string
		codec float64
	}{{"by-value", config.Default().PayloadCodecBps}, {"shared-fs", 0}} {
		pc := pc
		b.Run(pc.name, func(b *testing.B) {
			prm := config.Default()
			prm.PayloadCodecBps = pc.codec
			var m time.Duration
			for i := 0; i < b.N; i++ {
				m = benchChain(1, prm, wms.ModeServerless, core.ReusePolicy())
			}
			b.ReportMetric(m.Seconds(), "virtual_s")
		})
	}
}

// BenchmarkAblationUplink varies the submit-node uplink — the mechanism
// behind Fig. 2's container slope.
func BenchmarkAblationUplink(b *testing.B) {
	for _, uc := range []struct {
		name string
		bps  float64
	}{{"1Gbps", 1e9 / 8}, {"10Gbps", 10e9 / 8}} {
		uc := uc
		b.Run(uc.name, func(b *testing.B) {
			o := quickOpts()
			o.Prm.SubmitUplinkBps = uc.bps
			var res experiments.Fig2Result
			for i := 0; i < b.N; i++ {
				res = experiments.Fig2(o)
			}
			b.ReportMetric(res.ContainerFit.Slope, "container_s/task")
		})
	}
}

// BenchmarkAblationContainerConcurrency compares one-request-per-container
// isolation (cc=1) against co-located tasks (cc=8) under a parallel burst.
func BenchmarkAblationContainerConcurrency(b *testing.B) {
	for _, cc := range []int{1, 8} {
		cc := cc
		b.Run(map[int]string{1: "cc1", 8: "cc8"}[cc], func(b *testing.B) {
			var burstSecs float64
			for i := 0; i < b.N; i++ {
				burstSecs = burstLatency(uint64(1), cc)
			}
			b.ReportMetric(burstSecs, "burst_virtual_s")
		})
	}
}

// burstLatency fires 16 concurrent invocations at a service capped at two
// replicas and returns the time until all complete.
func burstLatency(seed uint64, cc int) float64 {
	prm := config.Default()
	s := core.NewStack(seed, prm)
	s.RegisterTransformation(workload.MatmulTransformation, prm.ImageLayersBytes[len(prm.ImageLayersBytes)-1])
	var total time.Duration
	s.Env.Go("main", func(p *sim.Proc) {
		defer s.Shutdown()
		policy := core.DeployPolicy{
			MinScale: 2, InitialScale: 2, MaxScale: 2,
			ContainerConcurrency: cc, PrePullAllNodes: true, CapCores: 1,
		}
		if err := s.DeployFunction(p, workload.MatmulTransformation, policy); err != nil {
			panic(err)
		}
		svc, _ := s.Service(workload.MatmulTransformation)
		start := p.Now()
		wg := sim.NewWaitGroup(s.Env)
		for i := 0; i < 16; i++ {
			wg.Add(1)
			s.Env.Go("client", func(cp *sim.Proc) {
				defer wg.Done()
				_, _ = svc.Invoke(cp, knative.Request{
					From: cluster.SubmitNodeName, PayloadIn: 2 * prm.MatrixBytes,
					PayloadOut: prm.MatrixBytes, Work: 0.42,
				})
			})
		}
		wg.Wait(p)
		total = p.Now() - start
	})
	s.Env.Run()
	return total.Seconds()
}

// ---- Placement benchmarks ----

// BenchmarkKubePlacement measures the scheduler's placement hot path at
// cluster scale: waves of one-core pods pack an N-node cluster to CPU
// capacity and churn, with a free control plane and zero scheduler latency
// so wall time is dominated by pickNode (filter + score over candidates)
// and the pod-lifecycle events. The sampled sub-bench scores 10% of nodes
// (floor 100) — the scale sweep's configuration — against the exhaustive
// default; compare the ns/placement lines.
func BenchmarkKubePlacement(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		nodes   int
		percent int
	}{
		{"nodes=1000", 1000, 0},
		{"nodes=5000", 5000, 0},
		{"nodes=5000/sampled", 5000, 10},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) { benchKubePlacement(b, cfg.nodes, cfg.percent) })
	}
}

func benchKubePlacement(b *testing.B, nodes, samplePercent int) {
	prm := config.Default()
	prm.WorkerNodes = nodes
	prm.SchedulerLatency = 0
	prm.SchedSamplePercent = samplePercent
	env := sim.NewEnv(1)
	cl := cluster.New(env, prm)
	reg := registry.New(cl.Net)
	reg.Push(registry.NewImage("fn", []int64{1}, 1))
	k := kube.New(env, cl, crt.NewSet(env, cl, reg, prm), prm)
	k.Start()
	env.Go("prepull", func(p *sim.Proc) {
		for _, w := range k.Workers() {
			if err := k.Runtime(w).PullImage(p, "fn"); err != nil {
				panic(err)
			}
		}
	})
	env.Run()

	waveCap := nodes * prm.CoresPerNode
	name := 0
	b.ResetTimer()
	for placed := 0; placed < b.N; {
		n := waveCap
		if rest := b.N - placed; rest < n {
			n = rest
		}
		env.Go("driver", func(p *sim.Proc) {
			pods := make([]*kube.Pod, 0, n)
			for i := 0; i < n; i++ {
				pod, err := k.CreatePod(kube.PodSpec{
					Name: fmt.Sprintf("fn-%d", name+i), Image: "fn", CPURequest: 1, MemMB: 64,
				})
				if err != nil {
					panic(err)
				}
				pods = append(pods, pod)
			}
			for _, pod := range pods {
				if err := k.WaitReady(p, pod); err != nil {
					panic(err)
				}
			}
			for _, pod := range pods {
				k.DeletePod(pod.Spec.Name)
			}
		})
		env.Run()
		name += n
		placed += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/placement")
}

// ---- Replication-runner benchmarks ----

// runnerBenchReps is the repetition count the runner benchmarks fan out —
// large enough to keep every worker busy at the compared pool sizes.
const runnerBenchReps = 8

// BenchmarkRunnerWorkers measures replication throughput (reps/s of the
// Fig. 5 centre point) at fixed pool sizes; compare the workers=1 and
// workers=4 lines to see the runner's scaling on this host.
func BenchmarkRunnerWorkers(b *testing.B) {
	mix := experiments.Mix{Native: 1.0 / 3, Container: 1.0 / 3, Serverless: 1.0 / 3}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := quickOpts()
			o.Reps = runnerBenchReps
			o.Workers = workers
			start := time.Now()
			for i := 0; i < b.N; i++ {
				experiments.RunMix(o, mix)
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(runnerBenchReps*b.N)/elapsed, "reps/s")
			}
		})
	}
}

// BenchmarkRunnerSpeedup runs the same seeded replication sweep at
// workers=1 and workers=4 within one benchmark and reports the wall-clock
// speedup directly (the CI bench-smoke step asserts nothing, but the metric
// makes scaling regressions visible in the -bench output).
func BenchmarkRunnerSpeedup(b *testing.B) {
	mix := experiments.Mix{Native: 1.0 / 3, Container: 1.0 / 3, Serverless: 1.0 / 3}
	o := quickOpts()
	o.Reps = runnerBenchReps
	var seqSecs, parSecs float64
	for i := 0; i < b.N; i++ {
		o.Workers = 1
		t0 := time.Now()
		seq := experiments.RunMix(o, mix)
		seqSecs += time.Since(t0).Seconds()

		o.Workers = 4
		t0 = time.Now()
		par := experiments.RunMix(o, mix)
		parSecs += time.Since(t0).Seconds()

		if seq != par {
			b.Fatalf("worker counts disagree: %+v vs %+v", seq, par)
		}
	}
	if parSecs > 0 {
		b.ReportMetric(float64(runnerBenchReps*b.N)/parSecs, "reps/s")
		b.ReportMetric(seqSecs/parSecs, "speedup_vs_workers1")
	}
}

// ---- Simulator micro-benchmarks ----

// BenchmarkSimKernelEvents measures raw event throughput of the DES kernel.
func BenchmarkSimKernelEvents(b *testing.B) {
	env := sim.NewEnv(1)
	env.Go("ticker", func(p *sim.Proc) {
		for {
			p.Sleep(time.Millisecond)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.RunFor(time.Millisecond)
	}
}

// BenchmarkSimKernelMillionTimers is the headline far-future stress: a
// million timers spread over five virtual minutes — the cluster-scale
// autoscaler-window / retry-backoff population — armed and then drained to
// completion. The heap-only sub-bench ablates the timer wheel (every arm
// and pop pays the full heap depth); compare the ns/timer lines.
func BenchmarkSimKernelMillionTimers(b *testing.B) {
	const nTimers = 1 << 20
	for _, cfg := range []struct {
		name     string
		heapOnly bool
	}{{"wheel", false}, {"heap-only", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			// One Env across iterations: after the first arm+drain the
			// event free list holds the whole population, so the steady
			// state is allocation-free and the numbers measure the queue
			// structures, not the allocator.
			env := sim.NewEnv(1)
			if cfg.heapOnly {
				env.DisableTimerWheel()
			}
			rng := sim.NewRNG(42)
			fired := 0
			cb := func() { fired++ }
			// Warm-up drain: populate the free list so even a single
			// timed iteration measures the steady state.
			for j := 0; j < nTimers; j++ {
				env.At(env.Now()+time.Duration(1+rng.Intn(int(300*time.Second))), cb)
			}
			env.Run()
			fired = 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := env.Now()
				for j := 0; j < nTimers; j++ {
					env.At(base+time.Duration(1+rng.Intn(int(300*time.Second))), cb)
				}
				env.Run()
			}
			b.StopTimer()
			if fired != b.N*nTimers {
				b.Fatalf("fired %d, want %d", fired, b.N*nTimers)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nTimers, "ns/timer")
		})
	}
}

// BenchmarkSimKernelTimerChurn measures the cancellation-heavy regime: a
// standing population of far-future timers where 90% are cancelled and
// re-armed before they fire (the keepalive/backoff lifecycle). The wheel
// collects cancellations lazily in O(1) amortized; heap-only pays
// compaction sweeps over the whole queue.
func BenchmarkSimKernelTimerChurn(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		heapOnly bool
	}{{"wheel", false}, {"heap-only", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			env := sim.NewEnv(1)
			if cfg.heapOnly {
				env.DisableTimerWheel()
			}
			rng := sim.NewRNG(7)
			cb := func() {}
			const window = 4096
			ring := make([]sim.Timer, window)
			arm := func() sim.Timer {
				return env.After(time.Duration(1+rng.Intn(int(10*time.Second))), cb)
			}
			for i := range ring {
				ring[i] = arm()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i & (window - 1)
				if rng.Intn(10) != 0 { // 90% cancelled before firing
					ring[slot].Stop()
				}
				ring[slot] = arm()
				if i&1023 == 0 {
					env.RunFor(time.Millisecond)
				}
			}
			b.StopTimer()
			env.Run()
		})
	}
}

// BenchmarkFluidServer measures the processor-sharing model under churn.
func BenchmarkFluidServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv(uint64(i))
		srv := fluid.New(env, "cpu", 8)
		for j := 0; j < 64; j++ {
			j := j
			env.Go("job", func(p *sim.Proc) {
				p.Sleep(time.Duration(j) * 10 * time.Millisecond)
				srv.Run(p, 1, 0)
			})
		}
		env.Run()
	}
}

// ---- Extension benchmarks (the paper's §VIII and §IX future work) ----

// BenchmarkExtDataMovement runs the §VIII communication-overhead study.
func BenchmarkExtDataMovement(b *testing.B) {
	o := quickOpts()
	var res experiments.DataMovementResult
	for i := 0; i < b.N; i++ {
		res = experiments.DataMovement(o)
	}
	for _, row := range res.Rows {
		if row.Mode == wms.ModeServerless {
			b.ReportMetric(row.TotalMB, row.Staging.String()+"_total_MB")
		}
	}
}

// BenchmarkExtResizing runs the §IX-C task-resizing study.
func BenchmarkExtResizing(b *testing.B) {
	o := quickOpts()
	var res experiments.ResizingResult
	for i := 0; i < b.N; i++ {
		res = experiments.Resizing(o)
	}
	if len(res.Rows) >= 2 {
		b.ReportMetric(res.Rows[0].Makespan, "split1_virtual_s")
		b.ReportMetric(res.Rows[len(res.Rows)-1].Makespan, "splitN_virtual_s")
	}
}

// BenchmarkExtRedirection runs the §IX-D task-redirection study.
func BenchmarkExtRedirection(b *testing.B) {
	o := quickOpts()
	var res experiments.RedirectionResult
	for i := 0; i < b.N; i++ {
		res = experiments.Redirection(o)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.MeanSec, row.Policy+"_mean_s")
	}
}

// BenchmarkExtClustering runs the §II-C task-clustering study.
func BenchmarkExtClustering(b *testing.B) {
	o := quickOpts()
	var res experiments.ClusteringResult
	for i := 0; i < b.N; i++ {
		res = experiments.Clustering(o)
	}
	if len(res.Rows) >= 2 {
		b.ReportMetric(res.Rows[0].Makespan, "unclustered_virtual_s")
		b.ReportMetric(res.Rows[1].Makespan, "clustered_virtual_s")
	}
}

// BenchmarkExtMontage runs the §IX-A complex-workflow study.
func BenchmarkExtMontage(b *testing.B) {
	o := quickOpts()
	var res experiments.MontageResult
	for i := 0; i < b.N; i++ {
		res = experiments.Montage(o)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Makespan, row.Mode.String()+"_virtual_s")
	}
}

// BenchmarkExtPlacement runs the internal/sched policy sweep and reports
// registry egress per kube policy.
func BenchmarkExtPlacement(b *testing.B) {
	o := quickOpts()
	var res experiments.PlacementResult
	for i := 0; i < b.N; i++ {
		res = experiments.Placement(o)
	}
	for _, row := range res.Rows {
		if row.Mode == wms.ModeServerless {
			b.ReportMetric(row.PulledMB, row.Policy+"_pulled_MB")
		}
	}
}

// BenchmarkExtIsolation quantifies the Fig. 5 isolation axis under a noisy
// co-tenant.
func BenchmarkExtIsolation(b *testing.B) {
	o := quickOpts()
	var res experiments.IsolationResult
	for i := 0; i < b.N; i++ {
		res = experiments.Isolation(o)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Slowdown, row.Mode.String()+"_slowdown")
	}
}

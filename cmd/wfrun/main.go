// Command wfrun executes a workflow through the full simulated stack
// (Pegasus-like planner + HTCondor + Kubernetes + Knative) and reports
// per-task provenance and makespans.
//
// Run a generated chain workload:
//
//	wfrun -chain 10 -workflows 10 -mode serverless
//	wfrun -chain 10 -mode mix:0.5,0,0.5
//
// Or a JSON spec (see internal/wms.Spec for the format):
//
//	wfrun -spec workflow.json
//
// Add -trace to stream the simulation event log.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wms"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		specPath  = flag.String("spec", "", "JSON workflow spec (overrides -chain)")
		chainLen  = flag.String("chain", "10", "generated chain length")
		workflows = flag.Int("workflows", 1, "concurrent copies of the workflow")
		modeFlag  = flag.String("mode", "native", "native | container | serverless | mix:N,C,S")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		trace     = flag.Bool("trace", false, "stream the simulation event log")
		fast      = flag.Bool("fast", false, "shrink condor latencies (quick demos)")
		provPath  = flag.String("provenance", "", "write JSON provenance of the first workflow to this file")
		htmlPath  = flag.String("html", "", "write an HTML Gantt timeline of the first workflow to this file")
		staging   = flag.String("staging", "by-value", "data staging: by-value | shared-fs | object-store")
	)
	flag.Parse()

	prm := config.Default()
	if *fast {
		prm.NegotiationDelay = 2 * time.Second
		prm.DAGManPoll = time.Second
	}
	s := core.NewStack(*seed, prm)
	if *trace {
		s.Env.SetTrace(func(at time.Duration, component, msg string) {
			fmt.Printf("%12s  %-24s %s\n", at.Truncate(time.Millisecond), component, msg)
		})
	}
	s.RegisterTransformation(workload.MatmulTransformation, prm.ImageLayersBytes[len(prm.ImageLayersBytes)-1])
	switch *staging {
	case "by-value":
	case "shared-fs":
		s.Engine.Staging = wms.StageSharedFS
	case "object-store":
		s.Engine.Staging = wms.StageObjectStore
	default:
		return fmt.Errorf("unknown -staging %q", *staging)
	}

	// Resolve the workload.
	var wfs []*wms.Workflow
	var assign wms.ModeAssigner
	needsServerless := false
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		spec, err := wms.LoadSpec(f)
		f.Close()
		if err != nil {
			return err
		}
		wf, specAssign, err := spec.Build()
		if err != nil {
			return err
		}
		for _, t := range spec.Tasks {
			if m, _ := wms.ParseMode(t.Mode); m == wms.ModeServerless || spec.DefaultMode == "serverless" {
				needsServerless = true
			}
		}
		// Every transformation in the spec must exist in the catalog.
		for _, id := range wf.TaskIDs() {
			task, _ := wf.Task(id)
			if _, ok := s.Catalogs.Transformation(task.Transformation); !ok {
				s.RegisterTransformation(task.Transformation, prm.ImageLayersBytes[len(prm.ImageLayersBytes)-1])
			}
		}
		wfs = []*wms.Workflow{wf}
		assign = specAssign
	} else {
		n, err := strconv.Atoi(*chainLen)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -chain %q", *chainLen)
		}
		wfs = workload.ConcurrentChains(*workflows, n, prm.MatrixBytes)
		assign, needsServerless, err = parseModeFlag(*modeFlag, s.Env.Rand().Fork())
		if err != nil {
			return err
		}
	}

	var result *core.ConcurrentResult
	var runErr error
	s.Env.Go("main", func(p *sim.Proc) {
		defer s.Shutdown()
		if needsServerless {
			if err := s.DeployFunction(p, workload.MatmulTransformation, core.ReusePolicy()); err != nil {
				runErr = err
				return
			}
		}
		result, runErr = s.RunConcurrentWorkflows(p, wfs, assign)
	})
	s.Env.Run()
	if runErr != nil {
		return runErr
	}

	// Report.
	tbl := metrics.NewTable("workflow", "makespan_s", "native", "container", "serverless")
	for _, run := range result.Runs {
		tbl.AddRow(run.Workflow, run.Makespan().Seconds(),
			run.ModeCount(wms.ModeNative), run.ModeCount(wms.ModeContainer), run.ModeCount(wms.ModeServerless))
	}
	if err := tbl.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nslowest makespan: %.1fs   mean: %.1fs\n",
		result.SlowestMakespan().Seconds(), result.MeanMakespan().Seconds())

	if *provPath != "" {
		f, err := os.Create(*provPath)
		if err != nil {
			return err
		}
		err = result.Runs[0].WriteProvenance(f, wfs[0])
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nprovenance written to %s\n", *provPath)
	}

	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return err
		}
		err = report.WriteHTML(f, result.Runs[0])
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("HTML timeline written to %s\n", *htmlPath)
	}

	if len(result.Runs) == 1 {
		run := result.Runs[0]
		fmt.Println()
		if err := report.Timeline(os.Stdout, run); err != nil {
			return err
		}
		fmt.Println()
		if err := report.Summary(os.Stdout, run); err != nil {
			return err
		}
		fmt.Println("\ncritical path:")
		if err := report.CriticalPath(os.Stdout, wfs[0], run); err != nil {
			return err
		}
	}
	return nil
}

// parseModeFlag understands "native", "container", "serverless", and
// "mix:N,C,S" weight triples.
func parseModeFlag(s string, rng *sim.RNG) (wms.ModeAssigner, bool, error) {
	if rest, ok := strings.CutPrefix(s, "mix:"); ok {
		parts := strings.Split(rest, ",")
		if len(parts) != 3 {
			return nil, false, fmt.Errorf("mix wants three weights, got %q", rest)
		}
		var w [3]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil || v < 0 {
				return nil, false, fmt.Errorf("bad mix weight %q", p)
			}
			w[i] = v
		}
		return wms.AssignFractions(rng, w[0], w[1], w[2]), w[2] > 0, nil
	}
	m, err := wms.ParseMode(s)
	if err != nil {
		return nil, false, err
	}
	return wms.AssignAll(m), m == wms.ModeServerless, nil
}

// Command fnserve runs the live Flask-equivalent matrix-multiplication
// function server (§V-C): POST two matrices in the repository's binary
// format to /invoke and receive their product. /healthz reports readiness.
//
//	fnserve -addr :8080 -init 1.2s
//
// The -init flag simulates the application-initialisation phase of a cold
// start (python + flask + numpy import in the paper's deployment).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/matrix"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	initDelay := flag.Duration("init", 0, "simulated app-init delay before readiness")
	flag.Parse()

	ready := time.Now().Add(*initDelay)
	served := 0

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if time.Now().Before(ready) {
			http.Error(w, "initialising", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/invoke", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if time.Now().Before(ready) {
			http.Error(w, "initialising", http.StatusServiceUnavailable)
			return
		}
		a, err := matrix.ReadFrom(r.Body)
		if err != nil {
			http.Error(w, "first operand: "+err.Error(), http.StatusBadRequest)
			return
		}
		b, err := matrix.ReadFrom(r.Body)
		if err != nil {
			http.Error(w, "second operand: "+err.Error(), http.StatusBadRequest)
			return
		}
		if a.Cols != b.Rows {
			http.Error(w, "shape mismatch", http.StatusBadRequest)
			return
		}
		served++
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = a.Mul(b).WriteTo(w)
		fmt.Fprintf(os.Stderr, "fnserve: served invocation %d (%dx%d)\n", served, a.Rows, b.Cols)
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fnserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fnserve: listening on http://%s (ready in %v)\n", lis.Addr(), *initDelay)
	if err := http.Serve(lis, mux); err != nil {
		fmt.Fprintf(os.Stderr, "fnserve: %v\n", err)
		os.Exit(1)
	}
}

// Command repro regenerates every figure and table of the paper's
// evaluation on the simulated testbed.
//
// Usage:
//
//	repro [flags] {fig1|fig2|fig5|fig6|coldstart|config|chaos|overload|traffic|execmode|scale|all}
//
// Flags:
//
//	-reps N    repetitions (seeds) averaged per number (default: paper setup)
//	-seed N    base random seed (default 1)
//	-quick     down-scaled sweeps for a fast smoke run
//	-workers N replication-runner pool size (0 = GOMAXPROCS, 1 = sequential)
//	-mode M    workflow execution mode: poll (default), decentralized, or
//	           trigger; unknown values fail fast listing the valid modes
//	-cpmode M  control-plane mode: baseline (default) or direct; unknown
//	           values fail fast listing the valid modes (the scale
//	           experiment always sweeps both)
//
// Results are identical at any -workers value: repetitions are isolated
// simulations fanned across the pool and merged back in repetition order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	reps := flag.Int("reps", 0, "repetitions per reported number (0 = paper default)")
	seed := flag.Uint64("seed", 1, "base random seed")
	quick := flag.Bool("quick", false, "down-scaled sweeps")
	workers := flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS, 1 = sequential)")
	traceOut := flag.String("trace-out", "", "with the trace experiment: write Chrome trace_event JSON to <prefix>-<mode>.json")
	execMode := flag.String("mode", "", "workflow execution mode: poll (default), decentralized, or trigger")
	cpMode := flag.String("cpmode", "", "control-plane mode: baseline (default) or direct")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [flags] {fig1|fig2|fig5|fig6|coldstart|config|all|datamove|resize|redirect|clustering|montage|isolation|placement|chaos|overload|traffic|trace|execmode|scale|ext}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Validate the modes up front: a typo must fail the run here, naming the
	// valid values, never fall back to the default path silently.
	if _, err := config.ParseExecMode(*execMode); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(2)
	}
	if _, err := config.ParseCPMode(*cpMode); err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(2)
	}

	o := experiments.DefaultOptions()
	o.Seed = *seed
	o.Quick = *quick
	o.Prm.ExecMode = *execMode
	o.Prm.CPMode = *cpMode
	if *quick {
		o.Reps = 2
	}
	if *reps > 0 {
		o.Reps = *reps
	}
	o.Workers = *workers

	run := func(name string) error {
		w := os.Stdout
		fmt.Fprintf(w, "== %s ==\n", name)
		defer fmt.Fprintln(w)
		switch name {
		case "fig1":
			return writeResult(w, experiments.Fig1(o))
		case "fig2":
			return writeResult(w, experiments.Fig2(o))
		case "fig5":
			return writeResult(w, experiments.Fig5(o))
		case "fig6":
			return writeResult(w, experiments.Fig6(o))
		case "coldstart":
			return writeResult(w, experiments.ColdStart(o))
		case "datamove":
			return writeResult(w, experiments.DataMovement(o))
		case "resize":
			return writeResult(w, experiments.Resizing(o))
		case "redirect":
			return writeResult(w, experiments.Redirection(o))
		case "clustering":
			return writeResult(w, experiments.Clustering(o))
		case "montage":
			return writeResult(w, experiments.Montage(o))
		case "isolation":
			return writeResult(w, experiments.Isolation(o))
		case "placement":
			return writeResult(w, experiments.Placement(o))
		case "chaos":
			return writeResult(w, experiments.Chaos(o))
		case "overload":
			return writeResult(w, experiments.Overload(o))
		case "traffic":
			return writeResult(w, experiments.Traffic(o))
		case "execmode":
			return writeResult(w, experiments.ExecModeStudy(o))
		case "scale":
			return writeResult(w, experiments.ScaleStudy(o))
		case "trace":
			res := experiments.Trace(o)
			if *traceOut != "" {
				for _, tc := range res.Rows {
					path := fmt.Sprintf("%s-%s.json", *traceOut, tc.Label())
					if err := os.WriteFile(path, tc.Tracer.ChromeBytes(), 0o644); err != nil {
						return err
					}
					fmt.Fprintf(w, "wrote %s (%d spans)\n", path, tc.Tracer.Len())
				}
			}
			return writeResult(w, res)
		case "config":
			return printConfig(w, o.Prm)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	target := flag.Arg(0)
	var names []string
	switch target {
	case "all":
		names = []string{"config", "coldstart", "fig1", "fig2", "fig5", "fig6"}
	case "ext":
		names = []string{"datamove", "resize", "redirect", "clustering", "montage", "isolation", "placement", "chaos", "overload", "traffic"}
	default:
		names = []string{target}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}
}

type tabler interface {
	WriteTable(io.Writer) error
}

func writeResult(w io.Writer, r tabler) error {
	return r.WriteTable(w)
}

// printConfig renders the §V-A software/hardware setup as encoded in the
// model parameters.
func printConfig(w io.Writer, p config.Params) error {
	tbl := metrics.NewTable("parameter", "value", "provenance")
	tbl.AddRow("worker nodes", p.WorkerNodes, "paper §V-A: 4 VMs, one is submit+control-plane")
	tbl.AddRow("cores per node", p.CoresPerNode, "paper §V-A")
	tbl.AddRow("memory per node (MB)", p.MemMBPerNode, "paper §V-A: 32 GB")
	tbl.AddRow("matrix size (bytes)", p.MatrixBytes, "paper §V-B: 350x350 int64")
	tbl.AddRow("task demand (core-s)", p.TaskCoreSeconds, "calibrated to Fig. 1 per-task times")
	tbl.AddRow("image size (bytes)", p.ImageBytes(), "typical slim python+numpy image")
	tbl.AddRow("container create", p.ContainerCreate, "calibrated to Fig. 1 docker overhead")
	tbl.AddRow("container start", p.ContainerStart, "calibrated to Fig. 1 docker overhead")
	tbl.AddRow("container stop+rm", p.ContainerStopRemove, "calibrated to Fig. 1 docker overhead")
	tbl.AddRow("cold start app init", p.ColdStartAppInit, "calibrated to the 1.48s cold start")
	tbl.AddRow("negotiator cycle", p.NegotiatorCycle, "calibrated to Fig. 6 absolute makespans")
	tbl.AddRow("shadow spawn", p.ShadowSpawn, "calibrated to Fig. 2 native slope")
	tbl.AddRow("submit uplink (B/s)", p.SubmitUplinkBps, "1 Gb/s; Fig. 2 container-slope bottleneck")
	tbl.AddRow("workflows per run", p.WorkflowsPerRun, "paper §V-C")
	tbl.AddRow("tasks per workflow", p.TasksPerWorkflow, "paper §V-C")
	return tbl.Write(w)
}

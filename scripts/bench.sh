#!/usr/bin/env bash
# bench.sh — run the repo's benchmarks and emit a machine-readable snapshot.
#
# Produces two files in $OUT_DIR (default: bench/):
#   BENCH_<git-sha>.txt   raw `go test -bench` output (benchstat-compatible)
#   BENCH_<git-sha>.json  parsed {benchmark, ns_op, b_op, allocs_op, metrics{}}
#
# Usage:
#   scripts/bench.sh                 # micro benchmarks, count=6
#   BENCH_PATTERN='Fig|Sim' scripts/bench.sh
#   BENCH_COUNT=10 OUT_DIR=/tmp scripts/bench.sh
#
# The JSON is produced with awk only — no dependencies beyond the go
# toolchain and a POSIX userland — so CI can upload it as an artifact and
# later sessions can diff snapshots across commits.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-SimKernelEvents|SimKernelMillionTimers|SimKernelTimerChurn|FluidServer|Fig1ContainerReuse|Fig2ParallelScaling|ColdStart|RunnerWorkers|KubePlacement}"
COUNT="${BENCH_COUNT:-6}"
BENCHTIME="${BENCH_TIME:-1s}"
OUT_DIR="${OUT_DIR:-bench}"

SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
mkdir -p "$OUT_DIR"
RAW="$OUT_DIR/BENCH_${SHA}.txt"
JSON="$OUT_DIR/BENCH_${SHA}.json"

if [ -n "${BENCH_INPUT:-}" ]; then
    # Test hook: parse a pre-recorded raw file instead of running go test.
    cp "$BENCH_INPUT" "$RAW"
else
    echo "benchmarking '${PATTERN}' count=${COUNT} benchtime=${BENCHTIME} -> ${RAW}" >&2
    go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"
fi

# A pattern that matches nothing still exits 0 from `go test` and would
# produce a snapshot with an empty benchmark list — which a later benchstat
# compare silently treats as "no regressions". Fail loudly instead.
if [ "$(grep -c '^Benchmark' "$RAW" || true)" -eq 0 ]; then
    echo "error: pattern '${PATTERN}' matched no benchmarks; no snapshot written" >&2
    rm -f "$RAW" "$JSON"
    exit 1
fi

# Parse the raw output: average repeated counts per benchmark, keep custom
# ReportMetric columns (unit taken from the trailing token, e.g. "reps/s").
awk -v sha="$SHA" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip GOMAXPROCS suffix
    seen[name] = 1
    n[name]++
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_\/%.-]/, "", unit)
        sum[name, unit] += $i
        cnt[name, unit]++
        units[name] = units[name] SUBSEP unit
    }
}
END {
    printf "{\n  \"commit\": \"%s\",\n  \"benchmarks\": [\n", sha
    first = 1
    for (name in seen) order[++k] = name
    asort_done = 0
    # stable output: simple insertion sort on names
    for (i = 2; i <= k; i++) {
        v = order[i]
        for (j = i - 1; j >= 1 && order[j] > v; j--) order[j + 1] = order[j]
        order[j + 1] = v
    }
    for (i = 1; i <= k; i++) {
        name = order[i]
        if (!first) printf ",\n"
        first = 0
        printf "    {\"name\": \"%s\", \"runs\": %d", name, n[name]
        split(units[name], us, SUBSEP)
        delete emitted
        for (u in us) {
            unit = us[u]
            if (unit == "" || emitted[unit]) continue
            emitted[unit] = 1
            key = unit
            gsub(/\//, "_per_", key)
            gsub(/%/, "pct_", key)
            gsub(/[^A-Za-z0-9_]/, "_", key)
            printf ", \"%s\": %.6g", key, sum[name, unit] / cnt[name, unit]
        }
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$RAW" > "$JSON"

echo "wrote ${JSON}" >&2

// Quickstart: build the full simulated testbed, register the matmul
// transformation as a serverless function, run one 10-task workflow in each
// execution mode, and print the paper's headline comparison.
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wms"
	"repro/internal/workload"
)

func main() {
	prm := config.Default()

	// One stack = one simulated testbed: 1 submit node + 3 workers,
	// HTCondor, Kubernetes, Knative, and the workflow engine.
	stack := core.NewStack(42, prm)

	// Containerize the matmul transformation and push its image.
	stack.RegisterTransformation(workload.MatmulTransformation, 18<<20)

	tbl := metrics.NewTable("mode", "makespan_s", "new_containers")
	stack.Env.Go("main", func(p *sim.Proc) {
		defer stack.Shutdown()

		// Register the function with Knative BEFORE the workflow runs
		// (§IV-1), keeping one warm replica that tasks reuse.
		if err := stack.DeployFunction(p, workload.MatmulTransformation, core.ReusePolicy()); err != nil {
			fmt.Fprintln(os.Stderr, "deploy:", err)
			return
		}

		for _, mode := range []wms.Mode{wms.ModeNative, wms.ModeContainer, wms.ModeServerless} {
			before := containersCreated(stack)
			wf := workload.Chain("demo-"+mode.String(), prm.TasksPerWorkflow, prm.MatrixBytes)
			res, err := stack.Engine.RunWorkflow(p, wf, wms.AssignAll(mode))
			if err != nil {
				fmt.Fprintln(os.Stderr, "run:", err)
				return
			}
			tbl.AddRow(mode.String(), res.Makespan().Seconds(), containersCreated(stack)-before)
		}
	})
	stack.Env.Run()

	fmt.Println("10 sequential matrix-multiply tasks per workflow, one workflow per mode:")
	fmt.Println()
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nnative is fastest but unisolated; containers isolate at a per-task cost;")
	fmt.Println("serverless reuses one warm container across all tasks — near-native speed")
	fmt.Println("with container isolation (the paper's headline trade-off).")
}

func containersCreated(stack *core.Stack) int {
	total := 0
	for _, rt := range stack.Runtimes {
		total += rt.CreatedTotal()
	}
	return total
}

// Eventdriven: the "dynamic HPC workflows" of the title. Data-arrival
// events (an instrument finishing a capture, a file landing) flow through a
// Knative Eventing broker; each one triggers planning and execution of a
// serverless analysis workflow — no operator submits anything. Arrivals are
// bursty, and the serverless platform absorbs the burst by scaling the
// function fleet.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/knative"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wms"
	"repro/internal/workload"
)

const arrivals = 6

func main() {
	prm := config.Default()
	stack := core.NewStack(11, prm)
	stack.RegisterTransformation(workload.MatmulTransformation, 18<<20)

	type arrival struct {
		subject string
		at      time.Duration
	}
	var log []arrival

	var dyn *core.DynamicRuns
	stack.Env.Go("main", func(p *sim.Proc) {
		defer stack.Shutdown()
		if err := stack.DeployFunction(p, workload.MatmulTransformation, core.DefaultPolicy()); err != nil {
			fmt.Fprintln(os.Stderr, "deploy:", err)
			return
		}
		broker := stack.Knative.NewBroker("default")

		// Every arrival event becomes a 4-task serverless analysis chain.
		n := 0
		dyn = stack.WatchAndRun(broker, "on-capture", "dev.repro.capture.done",
			func(ev knative.Event) (*wms.Workflow, wms.ModeAssigner) {
				n++
				wf := workload.Chain(fmt.Sprintf("dyn%02d", n), 4, prm.MatrixBytes)
				return wf, wms.AssignAll(wms.ModeServerless)
			})

		// The instrument: bursty captures (three quick, pause, three quick).
		for i := 0; i < arrivals; i++ {
			subject := fmt.Sprintf("capture-%02d.dat", i)
			log = append(log, arrival{subject: subject, at: p.Now()})
			if err := broker.Publish(p, "worker1", knative.Event{
				Type:      "dev.repro.capture.done",
				Source:    "instrument",
				Subject:   subject,
				DataBytes: prm.MatrixBytes,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "publish:", err)
				return
			}
			if i == 2 {
				p.Sleep(60 * time.Second)
			} else {
				p.Sleep(5 * time.Second)
			}
		}
		dyn.Wait(p)
	})
	stack.Env.Run()

	fmt.Printf("%d capture events, each triggering a 4-task serverless workflow:\n\n", arrivals)
	tbl := metrics.NewTable("event", "published_s", "workflow", "makespan_s", "status")
	for i, run := range dyn.Runs() {
		status, name := "ok", "-"
		makespan := 0.0
		if run.Err != nil {
			status = run.Err.Error()
		} else if run.Result != nil {
			name = run.Result.Workflow
			makespan = run.Result.Makespan().Seconds()
		}
		tbl.AddRow(log[i].subject, log[i].at.Seconds(), name, makespan, status)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nworkflows launch the moment data lands — no batch submission step;")
	fmt.Println("overlapping bursts share the warm function fleet.")
}

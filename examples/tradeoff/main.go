// Tradeoff: walk the performance-isolation spectrum of the paper's Fig. 5 —
// mixes of native, per-task-container, and serverless execution across ten
// concurrent workflows — and print the makespan at each point of a small
// simplex sweep.
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	o := experiments.DefaultOptions()
	o.Reps = 2

	mixes := []experiments.Mix{
		{Native: 1}, // no isolation, fastest
		{Native: 0.75, Serverless: 0.25},
		{Native: 0.5, Serverless: 0.5}, // the paper's orange bar
		{Serverless: 1},                // weak isolation via reuse
		{Native: 0.5, Container: 0.5},  // the paper's red bar
		{Container: 0.5, Serverless: 0.5},
		{Container: 1}, // strongest isolation, slowest
		{Native: 1.0 / 3, Container: 1.0 / 3, Serverless: 1.0 / 3}, // centre of the triangle
	}

	fmt.Println("isolation/performance trade-off: 10 concurrent workflows x 10 tasks,")
	fmt.Println("avg slowest makespan per mix (native / container / serverless weights)")
	fmt.Println()

	tbl := metrics.NewTable("native", "container", "serverless", "slowest_makespan_s", "isolation")
	for _, mix := range mixes {
		res := experiments.RunMix(o, mix)
		tbl.AddRow(mix.Native, mix.Container, mix.Serverless, res.MakespanSecs, isolationLabel(mix))
	}
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nmore container weight -> stronger isolation, longer makespan;")
	fmt.Println("serverless sits between: container isolation, near-native time.")
}

func isolationLabel(m experiments.Mix) string {
	switch {
	case m.Container >= 0.99:
		return "strong (fresh container per task)"
	case m.Native >= 0.99:
		return "none (shared slots)"
	case m.Serverless >= 0.99:
		return "weak (reused containers)"
	default:
		return "mixed"
	}
}

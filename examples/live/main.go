// Live: the real-compute counterpart of the motivation experiment. Two
// warm function servers (real net/http, real 350x350 integer matmuls)
// behind a round-robin balancer execute a sequential task chain — container
// reuse — and the same chain runs against a fresh server per task with an
// init delay — the docker-per-task pattern. Wall-clock times are real.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/httpfn"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/sim"
)

const (
	tasks     = 10
	nReplicas = 2
	// initDelay stands in for container create + app import on the
	// per-task path (scaled down from the paper's ~1.5s to keep the
	// example quick).
	initDelay = 150 * time.Millisecond
)

func main() {
	rng := sim.NewRNG(2024)
	a := matrix.New(matrix.PaperN, matrix.PaperN)
	b := matrix.New(matrix.PaperN, matrix.PaperN)
	a.Rand(rng.Uint64, matrix.PaperValueMin, matrix.PaperValueMax)
	b.Rand(rng.Uint64, matrix.PaperValueMin, matrix.PaperValueMax)

	reused, err := runReused(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reused:", err)
		os.Exit(1)
	}
	perTask, err := runFreshPerTask(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fresh:", err)
		os.Exit(1)
	}

	fmt.Printf("live chain of %d real %dx%d integer matmuls over HTTP:\n\n", tasks, matrix.PaperN, matrix.PaperN)
	tbl := metrics.NewTable("strategy", "total_s", "per_task_ms")
	tbl.AddRow("warm servers, reused (serverless)", reused.Seconds(), reused.Seconds()/tasks*1000)
	tbl.AddRow("fresh server per task (docker-like)", perTask.Seconds(), perTask.Seconds()/tasks*1000)
	if err := tbl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nreuse saved %.0f%% — the Fig. 1 effect, with real computation.\n",
		100*(1-reused.Seconds()/perTask.Seconds()))

	if err := runBurst(a, b); err != nil {
		fmt.Fprintln(os.Stderr, "burst:", err)
		os.Exit(1)
	}
}

// runBurst drives a concurrent burst through the autoscaled pool — the
// live counterpart of the Knative autoscaler reacting to parallel tasks.
func runBurst(a, b *matrix.Matrix) error {
	pool, err := httpfn.NewPool(2, 1, 4, initDelay)
	if err != nil {
		return err
	}
	defer pool.Close()

	const burst = 12
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Invoke(a, b); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Printf("\nburst of %d concurrent tasks: pool scaled 1 → %d replicas (%d cold starts), drained in %.2fs\n",
		burst, pool.Replicas(), pool.ColdStarts, time.Since(start).Seconds())
	return nil
}

// runReused drives the chain through warm replicas behind a balancer.
func runReused(a, b *matrix.Matrix) (time.Duration, error) {
	var bases []string
	for i := 0; i < nReplicas; i++ {
		srv := httpfn.NewServer(0)
		base, err := srv.Start()
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		bases = append(bases, base)
	}
	lb := httpfn.NewBalancer(bases...)

	start := time.Now()
	cur := a
	for i := 0; i < tasks; i++ {
		next, err := lb.Invoke(cur, b)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return time.Since(start), nil
}

// runFreshPerTask starts (and initialises) a new server for every task.
func runFreshPerTask(a, b *matrix.Matrix) (time.Duration, error) {
	var c httpfn.Client
	start := time.Now()
	cur := a
	for i := 0; i < tasks; i++ {
		srv := httpfn.NewServer(initDelay)
		base, err := srv.Start()
		if err != nil {
			return 0, err
		}
		for !c.Healthy(base) {
			time.Sleep(5 * time.Millisecond)
		}
		next, err := c.Invoke(base, cur, b)
		if err != nil {
			_ = srv.Close()
			return 0, err
		}
		cur = next
		if err := srv.Close(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

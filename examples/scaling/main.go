// Scaling: watch Knative's autoscaler react to a burst of parallel tasks —
// the §III-C mechanism behind Fig. 2. A burst of concurrent invocations
// arrives at a single warm replica; the autoscaler panic-scales, pods come
// up (cold starts), the burst drains, and after the stable window plus grace
// the service scales back down.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/knative"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	prm := config.Default()
	stack := core.NewStack(7, prm)
	stack.RegisterTransformation(workload.MatmulTransformation, 18<<20)

	const burst = 24
	timeline := metrics.NewTable("t_s", "ready_pods", "starting", "in_flight", "done")
	var done int

	stack.Env.Go("main", func(p *sim.Proc) {
		defer stack.Shutdown()
		policy := core.DefaultPolicy() // container-concurrency 8, 1 warm pod
		if err := stack.DeployFunction(p, workload.MatmulTransformation, policy); err != nil {
			fmt.Fprintln(os.Stderr, "deploy:", err)
			return
		}
		svc, _ := stack.Service(workload.MatmulTransformation)

		// Fire the burst: 24 concurrent 2-core-second tasks.
		wg := sim.NewWaitGroup(stack.Env)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			stack.Env.Go("client", func(cp *sim.Proc) {
				defer wg.Done()
				_, err := svc.Invoke(cp, knative.Request{
					From:       cluster.SubmitNodeName,
					PayloadIn:  2 * prm.MatrixBytes,
					PayloadOut: prm.MatrixBytes,
					Work:       2.0,
				})
				if err == nil {
					done++
				}
			})
		}

		// Sample the service state every second while the burst drains and
		// then through scale-down.
		sampler := stack.Env.Go("sampler", func(sp *sim.Proc) {
			for t := 0; t <= 110; t += 2 {
				timeline.AddRow(sp.Now().Seconds(), svc.ReadyPods(), svc.StartingPods(), svc.InFlight(), done)
				sp.Sleep(2 * time.Second)
			}
		})
		_ = sampler
		wg.Wait(p)
		p.Sleep(prm.StableWindow + prm.ScaleToZeroGrace + 20*time.Second)
	})
	stack.Env.Run()

	fmt.Printf("burst of %d parallel tasks against one warm replica (cc=8):\n\n", burst)
	if err := timeline.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nthe autoscaler panic-scales pods up for the burst, then returns to the")
	fmt.Println("min-scale floor after the stable window — elastic scaling without manual")
	fmt.Println("intervention (the serverless advantage of §III-C).")
}
